// Ablation A3: sensitivity to the step sizes β (primal) and δ (dual).
// Corollary 1 prescribes β = δ = O(T_C^{-1/3}); this bench sweeps the shared
// step size and reports regret, fit, completion time and accuracy so the
// prescribed region is visible as the sweet spot.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "core/fedl_strategy.h"
#include "harness/experiment.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    const std::vector<double> steps =
        flags.get_double_list("steps", {0.02, 0.1, 0.3, 1.0, 3.0});

    harness::ScenarioConfig cfg;
    cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 14));
    cfg.n_min = 4;
    cfg.budget = flags.get_double("budget", 600.0);
    cfg.train_samples = static_cast<std::size_t>(flags.get_int("samples", 600));
    cfg.test_samples = 150;
    cfg.width_scale = flags.get_double("scale", 0.08);
    cfg.batch_cap = 16;
    cfg.eval_cap = 96;
    cfg.dane.sgd_steps = 2;
    cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 25));
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

    harness::Experiment exp(cfg);

    std::cout << "== Series: A3 stepsize / sweep (beta = delta)\n";
    CsvTable table;
    table.add_column("step");
    table.add_column("regret");
    table.add_column("fit");
    table.add_column("total_time_s");
    table.add_column("final_acc");
    for (double step : steps) {
      core::FedLConfig fc;
      fc.learner.beta = step;
      fc.learner.delta = step;
      fc.learner.n_min = cfg.n_min;
      fc.learner.theta = cfg.theta;
      fc.l_max = 6;
      fc.learner.rho_max = 6.0;
      fc.seed = cfg.seed * 61 + 37;
      core::FedLStrategy strat(cfg.num_clients, fc);
      const auto res = exp.run(strat);
      table.append_row({step, res.regret.regret(), res.regret.fit(),
                        res.trace.total_time(),
                        res.trace.final_accuracy()});
    }
    table.write(std::cout);
    std::cout << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
