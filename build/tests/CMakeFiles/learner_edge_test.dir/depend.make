# Empty dependencies file for learner_edge_test.
# This may be replaced when dependencies are built.
