file(REMOVE_RECURSE
  "CMakeFiles/learner_edge_test.dir/learner_edge_test.cpp.o"
  "CMakeFiles/learner_edge_test.dir/learner_edge_test.cpp.o.d"
  "learner_edge_test"
  "learner_edge_test.pdb"
  "learner_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learner_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
