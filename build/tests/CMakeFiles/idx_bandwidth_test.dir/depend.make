# Empty dependencies file for idx_bandwidth_test.
# This may be replaced when dependencies are built.
