file(REMOVE_RECURSE
  "CMakeFiles/idx_bandwidth_test.dir/idx_bandwidth_test.cpp.o"
  "CMakeFiles/idx_bandwidth_test.dir/idx_bandwidth_test.cpp.o.d"
  "idx_bandwidth_test"
  "idx_bandwidth_test.pdb"
  "idx_bandwidth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idx_bandwidth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
