file(REMOVE_RECURSE
  "CMakeFiles/fl_engine_test.dir/fl_engine_test.cpp.o"
  "CMakeFiles/fl_engine_test.dir/fl_engine_test.cpp.o.d"
  "fl_engine_test"
  "fl_engine_test.pdb"
  "fl_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
