# Empty dependencies file for faults_theory_test.
# This may be replaced when dependencies are built.
