file(REMOVE_RECURSE
  "CMakeFiles/faults_theory_test.dir/faults_theory_test.cpp.o"
  "CMakeFiles/faults_theory_test.dir/faults_theory_test.cpp.o.d"
  "faults_theory_test"
  "faults_theory_test.pdb"
  "faults_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faults_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
