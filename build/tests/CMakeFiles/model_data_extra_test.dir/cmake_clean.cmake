file(REMOVE_RECURSE
  "CMakeFiles/model_data_extra_test.dir/model_data_extra_test.cpp.o"
  "CMakeFiles/model_data_extra_test.dir/model_data_extra_test.cpp.o.d"
  "model_data_extra_test"
  "model_data_extra_test.pdb"
  "model_data_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_data_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
