# Empty compiler generated dependencies file for model_data_extra_test.
# This may be replaced when dependencies are built.
