# Empty compiler generated dependencies file for oracle_report_test.
# This may be replaced when dependencies are built.
