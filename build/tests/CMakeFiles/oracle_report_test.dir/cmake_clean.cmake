file(REMOVE_RECURSE
  "CMakeFiles/oracle_report_test.dir/oracle_report_test.cpp.o"
  "CMakeFiles/oracle_report_test.dir/oracle_report_test.cpp.o.d"
  "oracle_report_test"
  "oracle_report_test.pdb"
  "oracle_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
