# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/net_sim_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/rounding_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/fl_engine_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/idx_bandwidth_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/faults_theory_test[1]_include.cmake")
include("/root/repo/build/tests/json_export_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_report_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/learner_edge_test[1]_include.cmake")
include("/root/repo/build/tests/engine_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/model_data_extra_test[1]_include.cmake")
