# Empty dependencies file for abl_regret_fit.
# This may be replaced when dependencies are built.
