file(REMOVE_RECURSE
  "CMakeFiles/abl_regret_fit.dir/abl_regret_fit.cpp.o"
  "CMakeFiles/abl_regret_fit.dir/abl_regret_fit.cpp.o.d"
  "abl_regret_fit"
  "abl_regret_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_regret_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
