# Empty dependencies file for fig3_cifar_acc_vs_time.
# This may be replaced when dependencies are built.
