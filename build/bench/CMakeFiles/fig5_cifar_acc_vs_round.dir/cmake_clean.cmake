file(REMOVE_RECURSE
  "CMakeFiles/fig5_cifar_acc_vs_round.dir/fig5_cifar_acc_vs_round.cpp.o"
  "CMakeFiles/fig5_cifar_acc_vs_round.dir/fig5_cifar_acc_vs_round.cpp.o.d"
  "fig5_cifar_acc_vs_round"
  "fig5_cifar_acc_vs_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cifar_acc_vs_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
