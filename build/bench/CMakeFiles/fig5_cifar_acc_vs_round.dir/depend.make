# Empty dependencies file for fig5_cifar_acc_vs_round.
# This may be replaced when dependencies are built.
