
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_local_solver.cpp" "bench/CMakeFiles/abl_local_solver.dir/abl_local_solver.cpp.o" "gcc" "bench/CMakeFiles/abl_local_solver.dir/abl_local_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/fedl_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fedl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/fedl_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/fedl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
