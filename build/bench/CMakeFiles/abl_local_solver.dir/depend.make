# Empty dependencies file for abl_local_solver.
# This may be replaced when dependencies are built.
