file(REMOVE_RECURSE
  "CMakeFiles/abl_local_solver.dir/abl_local_solver.cpp.o"
  "CMakeFiles/abl_local_solver.dir/abl_local_solver.cpp.o.d"
  "abl_local_solver"
  "abl_local_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_local_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
