file(REMOVE_RECURSE
  "CMakeFiles/abl_fairness.dir/abl_fairness.cpp.o"
  "CMakeFiles/abl_fairness.dir/abl_fairness.cpp.o.d"
  "abl_fairness"
  "abl_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
