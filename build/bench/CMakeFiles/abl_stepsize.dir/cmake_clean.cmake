file(REMOVE_RECURSE
  "CMakeFiles/abl_stepsize.dir/abl_stepsize.cpp.o"
  "CMakeFiles/abl_stepsize.dir/abl_stepsize.cpp.o.d"
  "abl_stepsize"
  "abl_stepsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stepsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
