# Empty dependencies file for abl_stepsize.
# This may be replaced when dependencies are built.
