file(REMOVE_RECURSE
  "CMakeFiles/abl_rounding.dir/abl_rounding.cpp.o"
  "CMakeFiles/abl_rounding.dir/abl_rounding.cpp.o.d"
  "abl_rounding"
  "abl_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
