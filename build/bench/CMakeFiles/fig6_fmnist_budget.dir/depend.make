# Empty dependencies file for fig6_fmnist_budget.
# This may be replaced when dependencies are built.
