file(REMOVE_RECURSE
  "CMakeFiles/fig6_fmnist_budget.dir/fig6_fmnist_budget.cpp.o"
  "CMakeFiles/fig6_fmnist_budget.dir/fig6_fmnist_budget.cpp.o.d"
  "fig6_fmnist_budget"
  "fig6_fmnist_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fmnist_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
