# Empty dependencies file for fig2_fmnist_acc_vs_time.
# This may be replaced when dependencies are built.
