file(REMOVE_RECURSE
  "CMakeFiles/fig4_fmnist_acc_vs_round.dir/fig4_fmnist_acc_vs_round.cpp.o"
  "CMakeFiles/fig4_fmnist_acc_vs_round.dir/fig4_fmnist_acc_vs_round.cpp.o.d"
  "fig4_fmnist_acc_vs_round"
  "fig4_fmnist_acc_vs_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fmnist_acc_vs_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
