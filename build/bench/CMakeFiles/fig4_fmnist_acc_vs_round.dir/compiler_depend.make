# Empty compiler generated dependencies file for fig4_fmnist_acc_vs_round.
# This may be replaced when dependencies are built.
