file(REMOVE_RECURSE
  "CMakeFiles/export_and_resume.dir/export_and_resume.cpp.o"
  "CMakeFiles/export_and_resume.dir/export_and_resume.cpp.o.d"
  "export_and_resume"
  "export_and_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_and_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
