# Empty compiler generated dependencies file for export_and_resume.
# This may be replaced when dependencies are built.
