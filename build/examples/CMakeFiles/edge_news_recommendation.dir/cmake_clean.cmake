file(REMOVE_RECURSE
  "CMakeFiles/edge_news_recommendation.dir/edge_news_recommendation.cpp.o"
  "CMakeFiles/edge_news_recommendation.dir/edge_news_recommendation.cpp.o.d"
  "edge_news_recommendation"
  "edge_news_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_news_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
