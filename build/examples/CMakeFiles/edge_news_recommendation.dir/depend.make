# Empty dependencies file for edge_news_recommendation.
# This may be replaced when dependencies are built.
