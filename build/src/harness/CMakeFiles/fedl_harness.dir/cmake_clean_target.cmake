file(REMOVE_RECURSE
  "libfedl_harness.a"
)
