# Empty dependencies file for fedl_harness.
# This may be replaced when dependencies are built.
