file(REMOVE_RECURSE
  "CMakeFiles/fedl_harness.dir/experiment.cpp.o"
  "CMakeFiles/fedl_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/fedl_harness.dir/json_export.cpp.o"
  "CMakeFiles/fedl_harness.dir/json_export.cpp.o.d"
  "CMakeFiles/fedl_harness.dir/report.cpp.o"
  "CMakeFiles/fedl_harness.dir/report.cpp.o.d"
  "libfedl_harness.a"
  "libfedl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
