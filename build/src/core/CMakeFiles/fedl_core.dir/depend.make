# Empty dependencies file for fedl_core.
# This may be replaced when dependencies are built.
