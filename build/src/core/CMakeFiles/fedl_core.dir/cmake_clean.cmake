file(REMOVE_RECURSE
  "CMakeFiles/fedl_core.dir/baselines.cpp.o"
  "CMakeFiles/fedl_core.dir/baselines.cpp.o.d"
  "CMakeFiles/fedl_core.dir/budget.cpp.o"
  "CMakeFiles/fedl_core.dir/budget.cpp.o.d"
  "CMakeFiles/fedl_core.dir/fairness.cpp.o"
  "CMakeFiles/fedl_core.dir/fairness.cpp.o.d"
  "CMakeFiles/fedl_core.dir/fedl_strategy.cpp.o"
  "CMakeFiles/fedl_core.dir/fedl_strategy.cpp.o.d"
  "CMakeFiles/fedl_core.dir/offline_oracle.cpp.o"
  "CMakeFiles/fedl_core.dir/offline_oracle.cpp.o.d"
  "CMakeFiles/fedl_core.dir/online_learner.cpp.o"
  "CMakeFiles/fedl_core.dir/online_learner.cpp.o.d"
  "CMakeFiles/fedl_core.dir/regret.cpp.o"
  "CMakeFiles/fedl_core.dir/regret.cpp.o.d"
  "CMakeFiles/fedl_core.dir/rounding.cpp.o"
  "CMakeFiles/fedl_core.dir/rounding.cpp.o.d"
  "CMakeFiles/fedl_core.dir/ucb_strategy.cpp.o"
  "CMakeFiles/fedl_core.dir/ucb_strategy.cpp.o.d"
  "libfedl_core.a"
  "libfedl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
