
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/fedl_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/budget.cpp" "src/core/CMakeFiles/fedl_core.dir/budget.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/budget.cpp.o.d"
  "/root/repo/src/core/fairness.cpp" "src/core/CMakeFiles/fedl_core.dir/fairness.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/fairness.cpp.o.d"
  "/root/repo/src/core/fedl_strategy.cpp" "src/core/CMakeFiles/fedl_core.dir/fedl_strategy.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/fedl_strategy.cpp.o.d"
  "/root/repo/src/core/offline_oracle.cpp" "src/core/CMakeFiles/fedl_core.dir/offline_oracle.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/offline_oracle.cpp.o.d"
  "/root/repo/src/core/online_learner.cpp" "src/core/CMakeFiles/fedl_core.dir/online_learner.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/online_learner.cpp.o.d"
  "/root/repo/src/core/regret.cpp" "src/core/CMakeFiles/fedl_core.dir/regret.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/regret.cpp.o.d"
  "/root/repo/src/core/rounding.cpp" "src/core/CMakeFiles/fedl_core.dir/rounding.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/rounding.cpp.o.d"
  "/root/repo/src/core/ucb_strategy.cpp" "src/core/CMakeFiles/fedl_core.dir/ucb_strategy.cpp.o" "gcc" "src/core/CMakeFiles/fedl_core.dir/ucb_strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/fedl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/fedl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fedl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/fedl_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
