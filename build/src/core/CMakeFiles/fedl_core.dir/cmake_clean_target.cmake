file(REMOVE_RECURSE
  "libfedl_core.a"
)
