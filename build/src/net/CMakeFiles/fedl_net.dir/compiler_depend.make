# Empty compiler generated dependencies file for fedl_net.
# This may be replaced when dependencies are built.
