file(REMOVE_RECURSE
  "libfedl_net.a"
)
