file(REMOVE_RECURSE
  "CMakeFiles/fedl_net.dir/bandwidth.cpp.o"
  "CMakeFiles/fedl_net.dir/bandwidth.cpp.o.d"
  "CMakeFiles/fedl_net.dir/channel.cpp.o"
  "CMakeFiles/fedl_net.dir/channel.cpp.o.d"
  "libfedl_net.a"
  "libfedl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
