file(REMOVE_RECURSE
  "libfedl_data.a"
)
