# Empty compiler generated dependencies file for fedl_data.
# This may be replaced when dependencies are built.
