file(REMOVE_RECURSE
  "CMakeFiles/fedl_data.dir/dataset.cpp.o"
  "CMakeFiles/fedl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/fedl_data.dir/idx_loader.cpp.o"
  "CMakeFiles/fedl_data.dir/idx_loader.cpp.o.d"
  "CMakeFiles/fedl_data.dir/online.cpp.o"
  "CMakeFiles/fedl_data.dir/online.cpp.o.d"
  "CMakeFiles/fedl_data.dir/partition.cpp.o"
  "CMakeFiles/fedl_data.dir/partition.cpp.o.d"
  "CMakeFiles/fedl_data.dir/synthetic.cpp.o"
  "CMakeFiles/fedl_data.dir/synthetic.cpp.o.d"
  "libfedl_data.a"
  "libfedl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
