file(REMOVE_RECURSE
  "CMakeFiles/fedl_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/fedl_parallel.dir/thread_pool.cpp.o.d"
  "libfedl_parallel.a"
  "libfedl_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
