file(REMOVE_RECURSE
  "libfedl_parallel.a"
)
