# Empty compiler generated dependencies file for fedl_parallel.
# This may be replaced when dependencies are built.
