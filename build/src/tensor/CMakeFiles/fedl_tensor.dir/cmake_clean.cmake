file(REMOVE_RECURSE
  "CMakeFiles/fedl_tensor.dir/gemm.cpp.o"
  "CMakeFiles/fedl_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/fedl_tensor.dir/im2col.cpp.o"
  "CMakeFiles/fedl_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/fedl_tensor.dir/ops.cpp.o"
  "CMakeFiles/fedl_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/fedl_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fedl_tensor.dir/tensor.cpp.o.d"
  "libfedl_tensor.a"
  "libfedl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
