file(REMOVE_RECURSE
  "libfedl_tensor.a"
)
