# Empty compiler generated dependencies file for fedl_tensor.
# This may be replaced when dependencies are built.
