# Empty compiler generated dependencies file for fedl_solver.
# This may be replaced when dependencies are built.
