file(REMOVE_RECURSE
  "CMakeFiles/fedl_solver.dir/projection.cpp.o"
  "CMakeFiles/fedl_solver.dir/projection.cpp.o.d"
  "CMakeFiles/fedl_solver.dir/prox_solver.cpp.o"
  "CMakeFiles/fedl_solver.dir/prox_solver.cpp.o.d"
  "libfedl_solver.a"
  "libfedl_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
