file(REMOVE_RECURSE
  "libfedl_solver.a"
)
