# Empty dependencies file for fedl_nn.
# This may be replaced when dependencies are built.
