file(REMOVE_RECURSE
  "libfedl_nn.a"
)
