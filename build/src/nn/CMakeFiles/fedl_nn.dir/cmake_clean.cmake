file(REMOVE_RECURSE
  "CMakeFiles/fedl_nn.dir/activations.cpp.o"
  "CMakeFiles/fedl_nn.dir/activations.cpp.o.d"
  "CMakeFiles/fedl_nn.dir/conv2d.cpp.o"
  "CMakeFiles/fedl_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/fedl_nn.dir/dense.cpp.o"
  "CMakeFiles/fedl_nn.dir/dense.cpp.o.d"
  "CMakeFiles/fedl_nn.dir/factory.cpp.o"
  "CMakeFiles/fedl_nn.dir/factory.cpp.o.d"
  "CMakeFiles/fedl_nn.dir/loss.cpp.o"
  "CMakeFiles/fedl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedl_nn.dir/model.cpp.o"
  "CMakeFiles/fedl_nn.dir/model.cpp.o.d"
  "CMakeFiles/fedl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fedl_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/fedl_nn.dir/pool.cpp.o"
  "CMakeFiles/fedl_nn.dir/pool.cpp.o.d"
  "CMakeFiles/fedl_nn.dir/serialize.cpp.o"
  "CMakeFiles/fedl_nn.dir/serialize.cpp.o.d"
  "libfedl_nn.a"
  "libfedl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
