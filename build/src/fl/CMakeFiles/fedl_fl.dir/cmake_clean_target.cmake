file(REMOVE_RECURSE
  "libfedl_fl.a"
)
