# Empty compiler generated dependencies file for fedl_fl.
# This may be replaced when dependencies are built.
