file(REMOVE_RECURSE
  "CMakeFiles/fedl_fl.dir/dane.cpp.o"
  "CMakeFiles/fedl_fl.dir/dane.cpp.o.d"
  "CMakeFiles/fedl_fl.dir/engine.cpp.o"
  "CMakeFiles/fedl_fl.dir/engine.cpp.o.d"
  "libfedl_fl.a"
  "libfedl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
