file(REMOVE_RECURSE
  "CMakeFiles/fedl_compress.dir/compressor.cpp.o"
  "CMakeFiles/fedl_compress.dir/compressor.cpp.o.d"
  "CMakeFiles/fedl_compress.dir/quantize.cpp.o"
  "CMakeFiles/fedl_compress.dir/quantize.cpp.o.d"
  "CMakeFiles/fedl_compress.dir/topk.cpp.o"
  "CMakeFiles/fedl_compress.dir/topk.cpp.o.d"
  "libfedl_compress.a"
  "libfedl_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
