# Empty dependencies file for fedl_compress.
# This may be replaced when dependencies are built.
