file(REMOVE_RECURSE
  "libfedl_compress.a"
)
