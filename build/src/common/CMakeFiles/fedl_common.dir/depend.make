# Empty dependencies file for fedl_common.
# This may be replaced when dependencies are built.
