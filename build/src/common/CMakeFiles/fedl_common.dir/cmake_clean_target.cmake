file(REMOVE_RECURSE
  "libfedl_common.a"
)
