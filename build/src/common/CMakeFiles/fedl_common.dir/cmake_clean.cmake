file(REMOVE_RECURSE
  "CMakeFiles/fedl_common.dir/config.cpp.o"
  "CMakeFiles/fedl_common.dir/config.cpp.o.d"
  "CMakeFiles/fedl_common.dir/csv.cpp.o"
  "CMakeFiles/fedl_common.dir/csv.cpp.o.d"
  "CMakeFiles/fedl_common.dir/logging.cpp.o"
  "CMakeFiles/fedl_common.dir/logging.cpp.o.d"
  "CMakeFiles/fedl_common.dir/rng.cpp.o"
  "CMakeFiles/fedl_common.dir/rng.cpp.o.d"
  "CMakeFiles/fedl_common.dir/stats.cpp.o"
  "CMakeFiles/fedl_common.dir/stats.cpp.o.d"
  "libfedl_common.a"
  "libfedl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
