
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/fedl_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/fedl_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/fedl_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/fedl_sim.dir/environment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fedl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/fedl_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
