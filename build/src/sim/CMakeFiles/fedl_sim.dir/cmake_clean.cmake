file(REMOVE_RECURSE
  "CMakeFiles/fedl_sim.dir/device.cpp.o"
  "CMakeFiles/fedl_sim.dir/device.cpp.o.d"
  "CMakeFiles/fedl_sim.dir/environment.cpp.o"
  "CMakeFiles/fedl_sim.dir/environment.cpp.o.d"
  "libfedl_sim.a"
  "libfedl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
