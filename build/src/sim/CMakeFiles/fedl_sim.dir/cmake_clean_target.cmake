file(REMOVE_RECURSE
  "libfedl_sim.a"
)
