# Empty compiler generated dependencies file for fedl_sim.
# This may be replaced when dependencies are built.
