#!/usr/bin/env python3
"""fedl-lint: the determinism/budget contract of this repo, enforced as code.

Every rule here encodes an invariant that no generic linter knows about but
that the reproduction's claims rest on (bit-identical decision traces at any
--jobs x --threads combination, the hard budget ledger of constraint (3a),
counter-based per-client RNG streams that make runs resumable). The rules are
AST-lite: regex plus file context over comment/string-stripped source. That
is deliberate — the linter must run anywhere Python runs, with zero
dependencies, in well under a second for the whole tree.

Each rule has an ID, a one-line rationale (printed with every finding and by
--list-rules), and an escape hatch: a `// fedl-lint: allow(RULE)` comment on
the offending line or the line directly above suppresses that rule there.
DESIGN.md §10 documents every rule together with the runtime test that backs
the same invariant dynamically.

Usage:
  fedl_lint.py --root REPO               lint src/ under REPO
  fedl_lint.py --root REPO --compile-headers --compiler c++
                                         also compile-check every public
                                         header for self-containedness
  fedl_lint.py --self-test DIR           run the fixture suite: every rule
                                         must fire on its known-bad snippet
                                         and be suppressed by allow()
  fedl_lint.py --list-rules              print the rule table

Exit codes: 0 clean, 1 findings (or fixture expectations violated),
2 usage/environment error.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

# --------------------------------------------------------------------------
# Rule table. `scope` is a predicate over the repo-relative posix path; most
# rules only apply inside src/ (tests and benches may legitimately use e.g.
# std::random_device to build adversarial inputs).


def _in_src(path):
    return path.startswith("src/")


def _in_src_outside_parallel(path):
    return path.startswith("src/") and not path.startswith("src/parallel/")


def _in_src_outside_budget(path):
    return path.startswith("src/") and path not in (
        "src/core/budget.h", "src/core/budget.cpp")


RULES = {}


class Rule:
    def __init__(self, rule_id, rationale, scope, check):
        self.id = rule_id
        self.rationale = rationale
        self.scope = scope
        self.check = check  # fn(path, ctx) -> [(line_no, message)]
        RULES[rule_id] = self


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return (f"{self.path}:{self.line}: [{self.rule.id}] {self.message}\n"
                f"    rationale: {self.rule.rationale}\n"
                f"    suppress : // fedl-lint: allow({self.rule.id})")


# --------------------------------------------------------------------------
# Source preprocessing: strip comments and string/char literal *contents*
# while preserving line structure, so rules never fire on prose. The allow()
# annotations are harvested from the raw text before stripping.

_ALLOW_RE = re.compile(r"//\s*fedl-lint:\s*allow\(([a-z0-9_,\s-]+)\)")


def harvest_allows(raw_lines):
    """Map line number (1-based) -> set of rule ids allowed on that line."""
    allows = {}
    for i, line in enumerate(raw_lines, 1):
        m = _ALLOW_RE.search(line)
        if m:
            allows[i] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return allows


def strip_comments_and_strings(text, keep_strings=False):
    """Blank out comments (and optionally string/char contents) in-place.

    Replaced characters become spaces so line/column structure survives.
    Handles //, /* */, "..." with escapes, '...' with escapes. Raw strings
    are treated as plain strings (good enough: the repo does not use R"()"
    delimiters with embedded quotes in lintable positions).
    """
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = STRING
                i += 1
                continue
            if c == "'":
                state = CHAR
                i += 1
                continue
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = NORMAL
                i += 2
                continue
            if c != "\n":
                out[i] = " "
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\":
                if not keep_strings and c != "\n":
                    out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    if not keep_strings:
                        out[i + 1] = " "
                    i += 2
                    continue
            elif c == quote:
                state = NORMAL
            elif c != "\n" and not keep_strings:
                out[i] = " "
        i += 1
    return "".join(out)


class FileContext:
    """Raw + stripped views of one file, shared by all rules."""

    def __init__(self, path, text):
        self.path = path
        self.raw = text
        self.raw_lines = text.splitlines()
        self.allows = harvest_allows(self.raw_lines)
        self.code = strip_comments_and_strings(text)           # no strings
        self.code_lines = self.code.splitlines()
        self.code_with_strings = strip_comments_and_strings(
            text, keep_strings=True)                           # strings kept
        self.code_with_strings_lines = self.code_with_strings.splitlines()

    def allowed(self, line_no, rule_id):
        for ln in (line_no, line_no - 1):
            if rule_id in self.allows.get(ln, set()):
                return True
        return False

    def body_extent(self, start_idx):
        """Lines [start_idx, end) of the brace-balanced block opened at or
        after start_idx (0-based index into code_lines). Falls back to the
        next two lines when no brace opens (single-statement loop)."""
        depth = 0
        opened = False
        for j in range(start_idx, min(start_idx + 400, len(self.code_lines))):
            for ch in self.code_lines[j]:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
                    if opened and depth <= 0:
                        return start_idx, j + 1
            if not opened and j > start_idx:
                return start_idx, min(start_idx + 3, len(self.code_lines))
        return start_idx, min(start_idx + 400, len(self.code_lines))


# --------------------------------------------------------------------------
# FDL001 ambient-rng — no std::rand / random_device / time( in src/.

_AMBIENT_RNG_RE = re.compile(
    r"\bstd::rand\b|(?<![\w.:])s?rand\s*\(|\brandom_device\b"
    r"|\bstd::time\s*\(|(?<![\w.:])time\s*\(")


def check_ambient_rng(path, ctx):
    findings = []
    for i, line in enumerate(ctx.code_lines, 1):
        m = _AMBIENT_RNG_RE.search(line)
        if m:
            findings.append((i, f"ambient RNG/clock seed `{m.group(0).strip()}`"
                                " — use fedl::common::Rng counter-based"
                                " streams keyed by (seed, client, epoch)"))
    return findings


Rule(
    "ambient-rng",
    "std::rand/random_device/time() break counter-based per-client RNG "
    "streams, resume, and run-to-run reproducibility (backed by "
    "engine_parallel_test bit-identity)",
    _in_src, check_ambient_rng)


# --------------------------------------------------------------------------
# FDL002 unordered-iteration — no iteration over std::unordered_{map,set}
# that feeds a float accumulation or trace/metric emission. Hash-table order
# is implementation- and seed-dependent; float addition is not associative,
# so such loops destroy bit-identity of traces and EpochOutcomes.

_UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*[&*]?\s*(\w+)")
_SINK_RE = re.compile(
    r"\+=|\.observe\s*\(|\.add\s*\(|\.set\s*\(|<<|\bwrite|\bemit|\btrace")


def check_unordered_iteration(path, ctx):
    names = set(_UNORDERED_DECL_RE.findall(ctx.code))
    findings = []
    for i, line in enumerate(ctx.code_lines, 1):
        iterated = None
        m = re.search(r"for\s*\([^;)]*:\s*([A-Za-z_][\w.\->]*)\s*\)", line)
        if m:
            base = re.split(r"[.\->]", m.group(1))[-1] or m.group(1)
            if base in names or "unordered_" in m.group(1):
                iterated = m.group(1)
        if iterated is None:
            m = re.search(r"=\s*([A-Za-z_]\w*)\s*\.\s*begin\s*\(\)", line)
            if m and m.group(1) in names:
                iterated = m.group(1)
        if iterated is None:
            continue
        lo, hi = ctx.body_extent(i - 1)
        body = "\n".join(ctx.code_lines[lo:hi])
        if _SINK_RE.search(body):
            findings.append(
                (i, f"iteration over unordered container `{iterated}` feeds "
                    "an accumulation/emission — hash order is nondeterministic;"
                    " copy keys into a sorted vector first"))
    return findings


Rule(
    "unordered-iteration",
    "hash-table iteration order is unspecified; feeding it into float "
    "accumulation or trace emission breaks byte-identical traces (backed by "
    "scheduler_test serial-vs-jobs trace bit-identity)",
    _in_src, check_unordered_iteration)


# --------------------------------------------------------------------------
# FDL003 shared-pool — ThreadPool::shared() only inside src/parallel. All
# other code must take WorkerLease / leased_parallel_for so the Scheduler's
# global thread budget (J runners + sum of leases <= budget) stays true.

_SHARED_POOL_RE = re.compile(r"\bThreadPool::shared\s*\(")


def check_shared_pool(path, ctx):
    findings = []
    for i, line in enumerate(ctx.code_lines, 1):
        if _SHARED_POOL_RE.search(line):
            findings.append(
                (i, "direct ThreadPool::shared() outside src/parallel — "
                    "acquire a WorkerLease / use leased_parallel_for so the "
                    "scheduler's thread budget holds"))
    return findings


Rule(
    "shared-pool",
    "unbudgeted ThreadPool::shared() use oversubscribes the machine and "
    "bypasses the Scheduler invariant J + sum(leases) <= budget (backed by "
    "scheduler_test budget-never-exceeded; the rule PR 6 found Conv2d "
    "violating)",
    _in_src_outside_parallel, check_shared_pool)


# --------------------------------------------------------------------------
# FDL004 ledger-mutation — BudgetLedger state changes only through charge().
# Two sub-checks: (a) the class itself may not grow new mutating members or
# friends; (b) nobody may const_cast their way around it.

_METHOD_DECL_RE = re.compile(
    r"^\s*(?!//)(?:[\w:<>,&*~\[\]\s]+?\s)??(~?\w+)\s*\([^;{}]*\)\s*"
    r"(const\b[^;{]*)?[;{]")
_LEDGER_CONST_MUTATORS = {"BudgetLedger", "~BudgetLedger", "charge"}


def check_ledger_mutation(path, ctx):
    findings = []
    # (b) const_cast / memory smashing aimed at the ledger, anywhere in src/.
    for i, line in enumerate(ctx.code_lines, 1):
        if re.search(r"const_cast\s*<[^>]*BudgetLedger", line):
            findings.append(
                (i, "const_cast around BudgetLedger — budget state may only "
                    "change through BudgetLedger::charge()"))
    # (a) any declaration of `class BudgetLedger` outside budget.h must not
    # exist, and any in-file class body must only expose charge() as mutator.
    m = re.search(r"\bclass\s+BudgetLedger\b", ctx.code)
    if m:
        start_line = ctx.code[:m.start()].count("\n")
        lo, hi = ctx.body_extent(start_line)
        body_lines = ctx.code_lines[lo:hi]
        private_from = None
        for k, bl in enumerate(body_lines):
            if re.search(r"\bprivate\s*:", bl):
                private_from = k
                break
        public_body = body_lines[:private_from] if private_from else body_lines
        for k, bl in enumerate(public_body):
            dm = _METHOD_DECL_RE.match(bl)
            if not dm:
                continue
            name, const_qual = dm.group(1), dm.group(2)
            if const_qual or name in _LEDGER_CONST_MUTATORS:
                continue
            if re.search(r"\bstatic\b", bl):
                continue
            findings.append(
                (lo + k + 1,
                 f"BudgetLedger declares non-const member `{name}` — "
                 "charge() must stay the only mutating entry point"))
        for k, bl in enumerate(body_lines):
            if re.search(r"\bfriend\b", bl):
                findings.append(
                    (lo + k + 1,
                     "friend declaration inside BudgetLedger — friends could "
                     "mutate spent_ bypassing charge()'s overdraw FEDL_CHECK"))
    return findings


Rule(
    "ledger-mutation",
    "constraint (3a) is a hard budget: charge() FEDL_CHECKs that spent never "
    "exceeds total; any second mutation path can silently overdraw (backed "
    "by budget_invariant_test: 8 strategies x 20 seeds never overdraw)",
    _in_src_outside_budget, check_ledger_mutation)


# --------------------------------------------------------------------------
# FDL005 naked-new — no naked new/malloc in src/. Ownership goes through
# containers / unique_ptr; the three intentionally-leaked singletons carry
# an allow() with their justification.

_NAKED_NEW_RE = re.compile(
    r"(?<![\w.])new\b(?!\s*\()|\b(?:malloc|calloc|realloc|free)\s*\(")


def check_naked_new(path, ctx):
    findings = []
    for i, line in enumerate(ctx.code_lines, 1):
        m = _NAKED_NEW_RE.search(line)
        if m:
            findings.append(
                (i, f"naked allocation `{m.group(0).strip()}` — use "
                    "std::vector/std::unique_ptr (or justify a leaked "
                    "singleton with an allow comment)"))
    return findings


Rule(
    "naked-new",
    "raw new/malloc invites leaks and double frees under the engine's "
    "exception paths; ASan (`FEDL_SANITIZE=address`, ctest -L sanitize) "
    "backs this at runtime",
    _in_src, check_naked_new)


# --------------------------------------------------------------------------
# FDL006 metric-name — metric-name literals must be dotted snake.case
# (`subsystem.metric_name`), matching the registry convention that the
# validate_trace.py / plotting toolchain keys on.

_METRIC_SITE_RE = re.compile(
    r"\b(?:Counter|Gauge|Histogram)\s+\w+\s*[({]\s*\"([^\"]*)\""
    r"|\bregister_(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
_METRIC_NAME_OK_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def check_metric_name(path, ctx):
    findings = []
    for i, line in enumerate(ctx.code_with_strings_lines, 1):
        for m in _METRIC_SITE_RE.finditer(line):
            name = m.group(1) if m.group(1) is not None else m.group(2)
            if not _METRIC_NAME_OK_RE.match(name):
                findings.append(
                    (i, f"metric name \"{name}\" is not dotted snake.case "
                        "(`subsystem.metric_name`)"))
    return findings


Rule(
    "metric-name",
    "the metrics registry, BENCH_*.json splicing and plotting scripts key "
    "on `subsystem.metric_name`; off-convention names silently vanish from "
    "dashboards (backed by obs_test JSONL schema golden)",
    _in_src, check_metric_name)


# --------------------------------------------------------------------------
# FDL007 header-self-contained — every public header compiles as the first
# include of a TU. Checked by generating a one-line TU per header and running
# `$CXX -fsyntax-only` over it (enabled with --compile-headers; the CI lint
# target runs it, plain invocations skip it to stay instant).


def check_headers_compile(root, compiler, only_headers=None):
    src_root = os.path.join(root, "src")
    headers = []
    if only_headers is not None:
        headers = list(only_headers)
    else:
        for dirpath, _dirs, files in os.walk(src_root):
            for f in sorted(files):
                if f.endswith(".h"):
                    headers.append(os.path.join(dirpath, f))
    findings = []
    with tempfile.TemporaryDirectory(prefix="fedl_lint_hdr") as tmp:
        for header in headers:
            # Headers under src/ are included the way the codebase includes
            # them (repo-relative, -I src); loose headers (fixtures) resolve
            # against their own directory.
            header = os.path.abspath(header)
            abs_src = os.path.abspath(src_root)
            under_src = (os.path.isdir(abs_src) and
                         os.path.commonpath([abs_src, header]) == abs_src)
            if under_src:
                include_dir, rel = abs_src, os.path.relpath(header, abs_src)
            else:
                include_dir, rel = (os.path.dirname(header),
                                    os.path.basename(header))
            tu = os.path.join(tmp, "tu.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{rel}"\n')
            cmd = [compiler, "-std=c++20", "-fsyntax-only",
                   "-I", include_dir, tu]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (ln for ln in proc.stderr.splitlines() if "error" in ln),
                    proc.stderr.strip().splitlines()[-1]
                    if proc.stderr.strip() else "compile failed")
                findings.append(Finding(
                    os.path.relpath(header, root), 1,
                    RULES["header-self-contained"],
                    f"header does not compile standalone: {first_error}"))
    return findings


Rule(
    "header-self-contained",
    "a header that only compiles after its includers' includes hides its "
    "real dependencies and breaks refactors; the per-header generated TU "
    "check keeps include-what-you-use honest",
    _in_src, lambda path, ctx: [])  # driven by check_headers_compile


# --------------------------------------------------------------------------
# Driver.


def lint_file(root, path, fixture_mode=False):
    """Lint one file; returns a list of Finding. `path` is absolute."""
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    scope_path = f"src/fixture/{os.path.basename(rel)}" if fixture_mode else rel
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(rel, 1, RULES["ambient-rng"], f"unreadable: {e}")]
    ctx = FileContext(rel, text)
    findings = []
    for rule in RULES.values():
        if rule.id == "header-self-contained":
            continue
        if not rule.scope(scope_path):
            continue
        for line_no, message in rule.check(scope_path, ctx):
            if not ctx.allowed(line_no, rule.id):
                findings.append(Finding(rel, line_no, rule, message))
    return findings


def iter_source_files(root):
    src_root = os.path.join(root, "src")
    for dirpath, _dirs, files in os.walk(src_root):
        for f in sorted(files):
            if f.endswith((".h", ".cpp", ".cc", ".hpp")):
                yield os.path.join(dirpath, f)


def run_lint(args):
    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"fedl-lint: no src/ under {root}", file=sys.stderr)
        return 2
    findings = []
    files = ([os.path.abspath(p) for p in args.paths] if args.paths
             else list(iter_source_files(root)))
    for path in files:
        findings.extend(lint_file(root, path))
    if args.compile_headers:
        findings.extend(check_headers_compile(root, args.compiler))
    for finding in findings:
        print(finding)
    count = len(files)
    status = f"{len(findings)} finding(s) in {count} file(s)"
    print(f"fedl-lint: {status}", file=sys.stderr)
    return 1 if findings else 0


# --------------------------------------------------------------------------
# Fixture self-test. Naming contract (tests/lint_fixtures/):
#   <rule-id>__fires[...].{cpp,h}    -> lint must report >=1 <rule-id> finding
#   <rule-id>__allowed[...].{cpp,h}  -> same bad code + allow(); 0 findings
#   <rule-id>__clean[...].{cpp,h}    -> conforming code; 0 findings
# header-self-contained fixtures are compiled with --compiler.


def run_self_test(args):
    fixdir = os.path.abspath(args.self_test)
    if not os.path.isdir(fixdir):
        print(f"fedl-lint: no fixture dir {fixdir}", file=sys.stderr)
        return 2
    failures = []
    checked = 0
    for fname in sorted(os.listdir(fixdir)):
        if not fname.endswith((".cpp", ".h")):
            continue
        m = re.match(r"([a-z0-9-]+)__(fires|allowed|clean)", fname)
        if not m:
            failures.append(f"{fname}: does not follow "
                            "<rule>__<fires|allowed|clean> naming")
            continue
        rule_id, kind = m.group(1), m.group(2)
        if rule_id not in RULES:
            failures.append(f"{fname}: unknown rule id {rule_id!r}")
            continue
        path = os.path.join(fixdir, fname)
        if rule_id == "header-self-contained":
            found = check_headers_compile(
                fixdir, args.compiler, only_headers=[path])
            # allow() inside the header suppresses, mirroring lint_file.
            with open(path, encoding="utf-8") as f:
                allows = harvest_allows(f.read().splitlines())
            if any(rule_id in s for s in allows.values()):
                found = []
            hits = found
        else:
            hits = [f for f in lint_file(fixdir, path, fixture_mode=True)
                    if f.rule.id == rule_id]
            stray = [f for f in lint_file(fixdir, path, fixture_mode=True)
                     if f.rule.id != rule_id]
            if stray:
                failures.append(
                    f"{fname}: unexpected cross-rule finding(s): "
                    + "; ".join(f"[{f.rule.id}] line {f.line}" for f in stray))
        checked += 1
        if kind == "fires" and not hits:
            failures.append(f"{fname}: expected a {rule_id} finding, got none")
        elif kind in ("allowed", "clean") and hits:
            failures.append(
                f"{fname}: expected no findings, got "
                + "; ".join(f"line {f.line}" for f in hits))
    fired = {f for f in os.listdir(fixdir) if "__fires" in f}
    for rule_id in RULES:
        if not any(f.startswith(rule_id + "__") for f in fired):
            failures.append(f"rule {rule_id}: no __fires fixture exercises it")
    for failure in failures:
        print(f"FIXTURE FAIL {failure}")
    print(f"fedl-lint self-test: {checked} fixtures, "
          f"{len(failures)} failure(s)", file=sys.stderr)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".",
                        help="repo root (containing src/)")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: all of src/)")
    parser.add_argument("--compile-headers", action="store_true",
                        help="also compile-check every public header")
    parser.add_argument("--compiler", default=os.environ.get("CXX", "c++"),
                        help="compiler for --compile-headers (default: $CXX)")
    parser.add_argument("--self-test", metavar="FIXTURE_DIR",
                        help="run the fixture suite instead of linting")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args()
    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}\n    {rule.rationale}")
        return 0
    if args.self_test:
        return run_self_test(args)
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
