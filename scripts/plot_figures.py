#!/usr/bin/env python3
"""Replot the paper figures from bench_output.txt.

The figure benches print one CSV block per (algorithm, setting) prefixed by
"== Series: <figure> / <label>". This script parses those blocks and, when
matplotlib is installed, renders one PNG per figure into --outdir; without
matplotlib it still parses everything and prints a summary, so it doubles as
an output-format validator in minimal environments.

Usage:
    ./run_benches.sh
    python3 scripts/plot_figures.py [--input bench_output.txt] [--outdir plots]
"""

import argparse
import collections
import csv
import io
import os
import re
import sys

SERIES_RE = re.compile(r"^== Series: (?P<figure>.+) / (?P<label>.+)$")


def parse_series(path):
    """Returns {figure: {label: list-of-row-dicts}}."""
    figures = collections.defaultdict(dict)
    with open(path) as f:
        lines = f.read().splitlines()
    i = 0
    while i < len(lines):
        m = SERIES_RE.match(lines[i])
        if not m:
            i += 1
            continue
        figure, label = m.group("figure"), m.group("label")
        block = []
        i += 1
        while i < len(lines) and lines[i] and not lines[i].startswith(("==", "--", "|", "=====")):
            block.append(lines[i])
            i += 1
        if not block:
            continue
        reader = csv.DictReader(io.StringIO("\n".join(block)))
        rows = []
        for row in reader:
            try:
                rows.append({k: float(v) for k, v in row.items()})
            except (TypeError, ValueError):
                break  # not a numeric CSV block (e.g. legend table)
        if rows:
            figures[figure][label] = rows
    return figures


def plot(figures, outdir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(outdir, exist_ok=True)
    for figure, series in figures.items():
        sample = next(iter(series.values()))[0]
        if "test_acc" in sample and "time_s" in sample:
            x_key = "round" if "acc-vs-round" in figure else "time_s"
            y_key = "test_acc"
        elif "budget" in sample:
            x_key, y_key = "budget", None  # loss-vs-budget table: one line/col
        else:
            continue

        fig, ax = plt.subplots(figsize=(5, 3.5))
        if y_key:
            for label, rows in sorted(series.items()):
                ax.plot([r[x_key] for r in rows], [r[y_key] for r in rows],
                        marker="o", markersize=2.5, label=label)
            ax.set_ylabel("test accuracy")
        else:
            rows = next(iter(series.values()))
            for col in rows[0]:
                if col == "budget":
                    continue
                ax.plot([r["budget"] for r in rows], [r[col] for r in rows],
                        marker="o", markersize=2.5, label=col)
            ax.set_ylabel("final training loss")
        ax.set_xlabel(x_key.replace("_", " "))
        ax.set_title(figure, fontsize=9)
        ax.legend(fontsize=7)
        ax.grid(alpha=0.3)
        fig.tight_layout()
        name = re.sub(r"[^A-Za-z0-9]+", "_", figure).strip("_") + ".png"
        fig.savefig(os.path.join(outdir, name), dpi=150)
        plt.close(fig)
        print(f"wrote {os.path.join(outdir, name)}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--input", default="bench_output.txt")
    ap.add_argument("--outdir", default="plots")
    args = ap.parse_args()

    figures = parse_series(args.input)
    if not figures:
        sys.exit(f"no series found in {args.input}; run ./run_benches.sh first")
    total = sum(len(s) for s in figures.values())
    print(f"parsed {len(figures)} figures, {total} series")
    try:
        plot(figures, args.outdir)
    except ImportError:
        print("matplotlib not installed; parse-only mode (series verified).")


if __name__ == "__main__":
    main()
