#!/usr/bin/env python3
"""Replace named '===== <bench> =====' sections of bench_output.txt with
freshly regenerated ones (used when a subset of benches is rerun after a
calibration fix, so the committed output reflects the final binaries).

Usage: splice_bench_sections.py <main_output> <replacement_file>...
Each replacement file must start with its own '===== name =====' header.
"""

import re
import sys


def split_sections(text):
    """Returns (preamble, [(name, body)]) keeping original order."""
    parts = re.split(r"^===== (.+?) =====$", text, flags=re.M)
    preamble = parts[0]
    sections = []
    for i in range(1, len(parts), 2):
        sections.append((parts[i], parts[i + 1]))
    return preamble, sections


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    main_path = sys.argv[1]
    preamble, sections = split_sections(open(main_path).read())

    replacements = {}
    for path in sys.argv[2:]:
        _, repl = split_sections(open(path).read())
        for name, body in repl:
            replacements[name] = body

    out = [preamble]
    seen = set()
    for name, body in sections:
        if name in replacements:
            body = replacements[name]
            seen.add(name)
        out.append(f"===== {name} =====")
        out.append(body)
    missing = set(replacements) - seen
    if missing:
        sys.exit(f"sections not found in {main_path}: {sorted(missing)}")
    open(main_path, "w").write("".join(
        s if s.endswith("\n") or s.startswith("=====") else s
        for s in _join(out)))
    print(f"spliced {sorted(seen)} into {main_path}")


def _join(parts):
    result = []
    for p in parts:
        result.append(p if not p.startswith("=====") else p + "\n")
    return result


if __name__ == "__main__":
    main()
