#!/usr/bin/env bash
# Check (never rewrite) formatting against the committed .clang-format.
#
# Usage:
#   scripts/check_format.sh               check every tracked C++ file
#   scripts/check_format.sh --diff-only   only files changed vs the
#                                         merge-base with origin/main
#                                         (fallback HEAD~1) or uncommitted —
#                                         the mode `ctest -L lint` runs, so
#                                         adopting the format never forces a
#                                         mass reformat of history
#
# Exit codes: 0 clean, 1 violations (a unified diff per file is printed),
# 77 when clang-format is unavailable (ctest SKIP_RETURN_CODE — the label
# stays green on boxes without LLVM installed).
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
diff_only=0
[[ "${1:-}" == "--diff-only" ]] && diff_only=1

fmt="${CLANG_FORMAT:-}"
if [[ -z "$fmt" ]]; then
  for candidate in clang-format clang-format-19 clang-format-18 \
                   clang-format-17 clang-format-16 clang-format-15; do
    if command -v "$candidate" >/dev/null 2>&1; then
      fmt="$candidate"
      break
    fi
  done
fi
if [[ -z "$fmt" ]]; then
  echo "check_format.sh: clang-format not found; skipping (exit 77)."
  exit 77
fi

cd "$repo_root"
if [[ $diff_only -eq 1 ]]; then
  base="$(git merge-base origin/main HEAD 2>/dev/null || true)"
  [[ -z "$base" ]] && base="$(git rev-parse -q --verify HEAD~1 || true)"
  mapfile -t files < <(
    { [[ -n "$base" ]] && git diff --name-only --diff-filter=d "$base" \
        -- '*.cpp' '*.h'
      git diff --name-only --diff-filter=d -- '*.cpp' '*.h'; } | sort -u)
else
  mapfile -t files < <(git ls-files -- '*.cpp' '*.h')
fi

# Lint fixtures are deliberately-bad snippets; exempt them from style too.
filtered=()
for f in "${files[@]:-}"; do
  [[ -z "$f" || ! -f "$f" ]] && continue
  [[ "$f" == tests/lint_fixtures/* ]] && continue
  filtered+=("$f")
done

if [[ ${#filtered[@]} -eq 0 ]]; then
  echo "check_format.sh: no files to check."
  exit 0
fi

status=0
for f in "${filtered[@]}"; do
  if ! diff -u --label "$f (tracked)" --label "$f (clang-format)" \
       "$f" <("$fmt" --style=file "$f") >/tmp/fedl_fmt_diff.$$ 2>&1; then
    status=1
    echo "=== $f is not clang-format clean:"
    head -40 /tmp/fedl_fmt_diff.$$
  fi
done
rm -f /tmp/fedl_fmt_diff.$$
if [[ $status -eq 0 ]]; then
  echo "check_format.sh: ${#filtered[@]} file(s) clean."
fi
exit $status
