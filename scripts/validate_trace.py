#!/usr/bin/env python3
"""Validate the observability artifacts the fedl binaries emit.

Checks any subset of the artifact kinds (stdlib only, no deps):

  --trace     trace.jsonl    per-epoch JSONL decision telemetry plus the
                             optional "digest" (determinism sentinel, chain
                             continuity checked), "anomaly" (invariant
                             monitor) and "event" (virtual-clock dispatch/
                             complete/drop/flush, --async runs) records
                             (harness/experiment.cpp schema)
  --metrics   metrics.json   metrics-registry snapshot (obs/metrics.h shape)
  --profile   profile.json   Chrome-trace / Perfetto timeline (obs/profile.h)
  --series    series.json    time-series ring export (obs/time_series.h)
  --manifest  manifest.json  run manifest (obs/manifest.h)
  --prom      metrics.prom   Prometheus text exposition (obs/prometheus.h)

Exits 0 when every provided artifact is well formed, 1 with a message
otherwise. Wired into ctest as `obs_artifacts` (tests/CMakeLists.txt) so a
schema drift between the C++ emitters and this validator fails the suite.
"""

import argparse
import json
import math
import re
import sys

EPOCH_KEYS = {
    "type", "algorithm", "epoch", "num_available", "num_selected",
    "iterations", "rho", "mu0", "eta_max", "latency_s", "epoch_cost",
    "budget_total", "budget_spent", "budget_remaining",
    "train_loss_selected", "train_loss_all", "test_loss", "test_accuracy",
    "num_dropped", "clients",
}

CLIENT_KEYS = {
    "id", "cost", "data_size", "tau_loc", "tau_cm_est", "x_frac", "mu",
    "eta_est", "delta_est", "selected", "eta_hat", "delta_hat", "latency_s",
    "completed_iters", "dropped",
}

DIGEST_KEYS = {"type", "algorithm", "epoch", "hash", "prev", "digest"}

# Virtual-clock records of the event-driven engine (fl/event_engine.h).
EVENT_KEYS = {
    "type", "algorithm", "kind", "vt", "epoch", "client", "version",
    "staleness", "buffer", "aggregated",
}

EVENT_KINDS = {"dispatch", "complete", "drop", "flush"}

# Which nullable fields must be null / non-null per event kind (the writer's
# contract in harness/experiment.cpp): staleness exists once an update
# arrives, buffer occupancy only after dispatch, aggregated only on flushes,
# and a flush has no single client.
EVENT_NULL_FIELDS = {
    "dispatch": {"staleness", "buffer", "aggregated"},
    "complete": {"aggregated"},
    "drop": {"staleness", "aggregated"},
    "flush": {"client"},
}

ANOMALY_KEYS = {
    "type", "algorithm", "epoch", "monitor", "observed", "limit", "detail",
}

MONITORS = {
    "regret_envelope", "budget_pacing", "estimator_drift", "dropout_rate",
}

HEX64_RE = re.compile(r"^[0-9a-f]{16}$")

# digest_hex(kFnvOffsetBasis): every digest chain starts here.
FNV_OFFSET_HEX = "cbf29ce484222325"


class ValidationError(Exception):
    pass


def fail(where, msg):
    raise ValidationError(f"{where}: {msg}")


def check_number(where, name, v, allow_null=False):
    if v is None:
        if allow_null:
            return
        fail(where, f"{name} is null")
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(where, f"{name} is not a number: {v!r}")
    if isinstance(v, float) and (math.isnan(v) or math.isinf(v)):
        fail(where, f"{name} is not finite: {v!r}")


def validate_digest_event(where, event, last_digest, last_epoch):
    """One determinism-sentinel record; returns the new chain tip."""
    if event.keys() != DIGEST_KEYS:
        fail(where, f"digest key set mismatch: missing "
                    f"{sorted(DIGEST_KEYS - event.keys())}, extra "
                    f"{sorted(event.keys() - DIGEST_KEYS)}")
    if event["hash"] != "fnv1a64":
        fail(where, f"unknown digest hash {event['hash']!r}")
    for key in ("prev", "digest"):
        if not isinstance(event[key], str) or not HEX64_RE.match(event[key]):
            fail(where, f"{key} is not 16 lowercase hex chars: "
                        f"{event[key]!r}")
    # Chain continuity: each record either starts a new run's chain at the
    # FNV offset basis or continues from the previous record's digest
    # (runs commit contiguously, so one tip suffices for the whole file).
    if event["prev"] != FNV_OFFSET_HEX and event["prev"] != last_digest:
        fail(where, f"digest chain broken: prev={event['prev']} but "
                    f"previous digest was {last_digest}")
    # The sentinel always folds the epoch record in, so the chain advances.
    if event["digest"] == event["prev"]:
        fail(where, "digest chain did not advance")
    if last_epoch is not None and event["epoch"] != last_epoch:
        fail(where, f"digest epoch {event['epoch']} does not match the "
                    f"preceding epoch event {last_epoch}")
    return event["digest"]


def validate_async_event(where, event, state):
    """One virtual-clock event record; mutates the per-file `state` dict
    (last_vt, completes_since_flush). Event records never advance the
    epoch-monotonicity state — cohorts resolve out of dispatch order, and
    the flush record carries the *latest* dispatch epoch."""
    if event.keys() != EVENT_KEYS:
        fail(where, f"event key set mismatch: missing "
                    f"{sorted(EVENT_KEYS - event.keys())}, extra "
                    f"{sorted(event.keys() - EVENT_KEYS)}")
    kind = event["kind"]
    if kind not in EVENT_KINDS:
        fail(where, f"unknown event kind {kind!r}")
    check_number(where, "vt", event["vt"])
    vt = event["vt"]
    if vt < 0:
        fail(where, f"negative virtual time {vt}")
    nulls = EVENT_NULL_FIELDS[kind]
    for key in ("client", "staleness", "buffer", "aggregated"):
        if key in nulls:
            if event[key] is not None:
                fail(where, f"{kind} event has non-null {key}="
                            f"{event[key]!r}")
        else:
            if not isinstance(event[key], int) or isinstance(event[key], bool) \
                    or event[key] < 0:
                fail(where, f"{kind} event {key} is not a non-negative "
                            f"integer: {event[key]!r}")
    for key in ("epoch", "version"):
        if not isinstance(event[key], int) or event[key] < 0:
            fail(where, f"{key} is not a non-negative integer: "
                        f"{event[key]!r}")
    # The virtual clock is monotone within a trial. A dispatch at vt 0 is
    # how every trial's clock starts, so it is the only place the clock may
    # jump backwards (grid traces commit several runs into one file).
    if kind == "dispatch" and vt == 0.0:
        state["last_vt"] = 0.0
        state["completes_since_flush"] = 0
    else:
        last_vt = state.get("last_vt")
        if last_vt is not None and vt < last_vt:
            fail(where, f"virtual clock ran backwards: {vt} after {last_vt}")
        state["last_vt"] = vt
    if kind == "complete":
        state["completes_since_flush"] = \
            state.get("completes_since_flush", 0) + 1
    elif kind == "flush":
        expect = state.get("completes_since_flush", 0)
        if event["aggregated"] != expect:
            fail(where, f"flush aggregated={event['aggregated']} but "
                        f"{expect} updates completed since the last flush")
        if event["aggregated"] == 0:
            fail(where, "flush aggregated nothing")
        if event["buffer"] != 0:
            fail(where, f"flush left buffer occupancy {event['buffer']}")
        state["completes_since_flush"] = 0


def validate_anomaly_event(where, event):
    if event.keys() != ANOMALY_KEYS:
        fail(where, f"anomaly key set mismatch: missing "
                    f"{sorted(ANOMALY_KEYS - event.keys())}, extra "
                    f"{sorted(event.keys() - ANOMALY_KEYS)}")
    if event["monitor"] not in MONITORS:
        fail(where, f"unknown monitor {event['monitor']!r}")
    check_number(where, "epoch", event["epoch"])
    # Non-finite observed/limit serialize as null (JsonWriter convention).
    for key in ("observed", "limit"):
        check_number(where, key, event[key], allow_null=True)
    if not isinstance(event["detail"], str) or not event["detail"]:
        fail(where, "anomaly detail missing or empty")


def validate_trace(path):
    num_events = 0
    num_digests = 0
    num_anomalies = 0
    num_async = 0
    first_epoch = None
    last_epoch = None
    last_digest = None
    async_state = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                fail(where, f"invalid JSON: {e}")
            if not isinstance(event, dict):
                fail(where, "event is not an object")
            etype = event.get("type")
            if etype == "digest":
                last_digest = validate_digest_event(where, event, last_digest,
                                                    last_epoch)
                num_digests += 1
                continue
            if etype == "anomaly":
                validate_anomaly_event(where, event)
                num_anomalies += 1
                continue
            if etype == "event":
                validate_async_event(where, event, async_state)
                num_async += 1
                continue
            if etype != "epoch":
                fail(where, f"unknown event type {etype!r}")
            missing = EPOCH_KEYS - event.keys()
            if missing:
                fail(where, f"missing keys: {sorted(missing)}")
            extra = event.keys() - EPOCH_KEYS
            if extra:
                fail(where, f"unexpected keys: {sorted(extra)}")
            for key in ("eta_max", "latency_s", "epoch_cost", "budget_total",
                        "budget_spent", "budget_remaining", "test_accuracy"):
                check_number(where, key, event[key])
            # Epochs must advance strictly within a run. A reset back to the
            # very first epoch value is a trial boundary (grid traces commit
            # several runs into one file); anything else is corruption.
            check_number(where, "epoch", event["epoch"])
            epoch = event["epoch"]
            if first_epoch is None:
                first_epoch = epoch
            elif not (epoch > last_epoch or epoch == first_epoch):
                fail(where, f"non-monotonic epoch: {epoch} after {last_epoch}")
            last_epoch = epoch
            for key in ("rho", "mu0"):
                check_number(where, key, event[key], allow_null=True)
            clients = event["clients"]
            if not isinstance(clients, list):
                fail(where, "clients is not an array")
            if len(clients) != event["num_available"]:
                fail(where, f"num_available={event['num_available']} but "
                            f"{len(clients)} client records")
            selected = 0
            for i, c in enumerate(clients):
                cwhere = f"{where} client[{i}]"
                if not isinstance(c, dict):
                    fail(cwhere, "not an object")
                if c.keys() != CLIENT_KEYS:
                    fail(cwhere, f"key set mismatch: missing "
                                 f"{sorted(CLIENT_KEYS - c.keys())}, extra "
                                 f"{sorted(c.keys() - CLIENT_KEYS)}")
                check_number(cwhere, "cost", c["cost"])
                check_number(cwhere, "tau_loc", c["tau_loc"])
                check_number(cwhere, "tau_cm_est", c["tau_cm_est"])
                if not isinstance(c["selected"], bool):
                    fail(cwhere, "selected is not a bool")
                if c["selected"]:
                    selected += 1
                    # realized outcomes must be present for selected clients
                    for key in ("eta_hat", "latency_s", "completed_iters"):
                        if c[key] is None:
                            fail(cwhere, f"selected client has null {key}")
                else:
                    for key in ("eta_hat", "delta_hat", "latency_s",
                                "completed_iters"):
                        if c[key] is not None:
                            fail(cwhere, f"unselected client has {key}="
                                         f"{c[key]!r}")
            if selected != event["num_selected"]:
                fail(where, f"num_selected={event['num_selected']} but "
                            f"{selected} clients flagged selected")
            spent_plus_rest = event["budget_spent"] + event["budget_remaining"]
            if abs(spent_plus_rest - event["budget_total"]) > 1e-6:
                fail(where, "budget ledger does not balance: "
                            f"{event['budget_spent']} + "
                            f"{event['budget_remaining']} != "
                            f"{event['budget_total']}")
            num_events += 1
    if num_events == 0:
        fail(path, "no epoch events")
    extras = []
    if num_digests:
        extras.append(f"{num_digests} digest records")
    if num_anomalies:
        extras.append(f"{num_anomalies} anomalies")
    if num_async:
        extras.append(f"{num_async} virtual-clock events")
    return ", ".join([f"{num_events} epoch events"] + extras)


def validate_metrics(path):
    with open(path, encoding="utf-8") as f:
        snap = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if section not in snap or not isinstance(snap[section], dict):
            fail(path, f"missing or non-object section {section!r}")
    for name, v in snap["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"counter {name}: not a non-negative integer: {v!r}")
    for name, v in snap["gauges"].items():
        check_number(path, f"gauge {name}", v, allow_null=True)
    for name, h in snap["histograms"].items():
        where = f"{path} histogram {name}"
        bounds = h.get("bounds")
        counts = h.get("counts")
        if not isinstance(bounds, list) or not bounds:
            fail(where, "bounds missing or empty")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            fail(where, f"bounds not strictly ascending: {bounds}")
        if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
            fail(where, f"expected {len(bounds) + 1} counts, got {counts!r}")
        if any(not isinstance(c, int) or c < 0 for c in counts):
            fail(where, f"counts must be non-negative integers: {counts}")
        if sum(counts) != h.get("total"):
            fail(where, f"total={h.get('total')} != sum(counts)={sum(counts)}")
        check_number(where, "sum", h.get("sum"))
    n = sum(len(snap[s]) for s in ("counters", "gauges", "histograms"))
    if n == 0:
        fail(path, "snapshot is empty")
    return f"{n} metrics"


def validate_profile(path):
    with open(path, encoding="utf-8") as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "traceEvents missing or not an array")
    spans = 0
    for i, ev in enumerate(events):
        where = f"{path} traceEvents[{i}]"
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(where, f"unexpected phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(where, "missing name")
        if ph == "X":
            spans += 1
            for key in ("ts", "dur"):
                check_number(where, key, ev.get(key))
                if ev[key] < 0:
                    fail(where, f"negative {key}: {ev[key]}")
            for key in ("pid", "tid"):
                if not isinstance(ev.get(key), int):
                    fail(where, f"missing integer {key}")
    if spans == 0:
        fail(path, "no complete ('X') span events")
    return f"{spans} spans"


def validate_series(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    capacity = doc.get("capacity")
    if not isinstance(capacity, int) or capacity <= 0:
        fail(path, f"capacity must be a positive integer: {capacity!r}")
    series = doc.get("series")
    if not isinstance(series, dict) or not series:
        fail(path, "series section missing or empty")
    samples = 0
    for name, s in series.items():
        where = f"{path} series {name!r}"
        epochs = s.get("epochs")
        values = s.get("values")
        if not isinstance(epochs, list) or not isinstance(values, list):
            fail(where, "epochs/values missing or not arrays")
        if len(epochs) != len(values):
            fail(where, f"{len(epochs)} epochs vs {len(values)} values")
        if len(epochs) > capacity:
            fail(where, f"{len(epochs)} samples exceed ring capacity "
                        f"{capacity}")
        for i, e in enumerate(epochs):
            if not isinstance(e, int) or e < 0:
                fail(where, f"epochs[{i}] not a non-negative integer: {e!r}")
        for i, v in enumerate(values):
            # NaN/Inf samples serialize as null, like the metrics snapshot.
            check_number(where, f"values[{i}]", v, allow_null=True)
        dropped = s.get("dropped")
        if not isinstance(dropped, int) or dropped < 0:
            fail(where, f"dropped not a non-negative integer: {dropped!r}")
        samples += len(epochs)
    return f"{len(series)} series, {samples} samples"


def validate_manifest(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "fedl-manifest-v1":
        fail(path, f"unknown manifest schema {doc.get('schema')!r}")
    if not isinstance(doc.get("clean"), bool):
        fail(path, "clean flag missing or not a bool")
    if not isinstance(doc.get("build_type"), str):
        fail(path, "build_type missing")
    if not isinstance(doc.get("profiling_compiled"), bool):
        fail(path, "profiling_compiled missing or not a bool")
    digest = doc.get("final_digest")
    if not isinstance(digest, str) or not HEX64_RE.match(digest):
        fail(path, f"final_digest is not 16 lowercase hex chars: {digest!r}")
    runs = doc.get("runs_digested")
    if not isinstance(runs, int) or runs < 0:
        fail(path, f"runs_digested not a non-negative integer: {runs!r}")
    if runs == 0 and digest != "0" * 16:
        fail(path, f"no run digested but final_digest is {digest!r}")
    fields = doc.get("fields")
    if not isinstance(fields, dict):
        fail(path, "fields missing or not an object")
    state = "clean" if doc["clean"] else "DIRTY"
    return f"{state}, {len(fields)} fields, {runs} runs digested"


def validate_prom(path):
    """Prometheus text exposition 0.0.4: TYPE comments + sample lines."""
    declared = {}
    samples = 0
    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$')
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            where = f"{path}:{lineno}"
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) != 4:
                        fail(where, f"malformed TYPE line: {line!r}")
                    if parts[3] not in ("counter", "gauge", "histogram"):
                        fail(where, f"unknown metric type {parts[3]!r}")
                    declared[parts[2]] = parts[3]
                continue
            m = sample_re.match(line)
            if not m:
                fail(where, f"malformed sample line: {line!r}")
            name, value = m.group(1), m.group(3)
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[:-len(suffix)] in declared:
                    base = name[:-len(suffix)]
                    break
            if base not in declared:
                fail(where, f"sample {name!r} has no preceding TYPE line")
            if not name.startswith("fedl_"):
                fail(where, f"metric {name!r} missing fedl_ prefix")
            if value not in ("NaN", "+Inf", "-Inf"):
                try:
                    float(value)
                except ValueError:
                    fail(where, f"unparseable sample value {value!r}")
            samples += 1
    if samples == 0:
        fail(path, "no samples")
    return f"{len(declared)} metrics, {samples} samples"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="per-epoch JSONL decision trace")
    parser.add_argument("--metrics", help="metrics snapshot JSON")
    parser.add_argument("--profile", help="Chrome-trace profile JSON")
    parser.add_argument("--series", help="time-series ring export JSON")
    parser.add_argument("--manifest", help="run manifest JSON")
    parser.add_argument("--prom", help="Prometheus text exposition")
    args = parser.parse_args()
    jobs = [
        (args.trace, validate_trace),
        (args.metrics, validate_metrics),
        (args.profile, validate_profile),
        (args.series, validate_series),
        (args.manifest, validate_manifest),
        (args.prom, validate_prom),
    ]
    if not any(path for path, _ in jobs):
        parser.error("nothing to validate; pass --trace/--metrics/--profile/"
                     "--series/--manifest/--prom")
    try:
        for path, validate in jobs:
            if path:
                print(f"OK {path}: {validate(path)}")
    except ValidationError as e:
        print(f"FAIL {e}", file=sys.stderr)
        return 1
    except OSError as e:
        print(f"FAIL {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
