#!/usr/bin/env python3
"""Validate the observability artifacts the fedl binaries emit.

Checks any subset of the three artifact kinds (stdlib only, no deps):

  --trace    trace.jsonl    per-epoch JSONL decision telemetry
                            (harness/experiment.cpp schema)
  --metrics  metrics.json   metrics-registry snapshot (obs/metrics.h shape)
  --profile  profile.json   Chrome-trace / Perfetto timeline (obs/profile.h)

Exits 0 when every provided artifact is well formed, 1 with a message
otherwise. Wired into ctest as `obs_artifacts` (tests/CMakeLists.txt) so a
schema drift between the C++ emitters and this validator fails the suite.
"""

import argparse
import json
import math
import sys

EPOCH_KEYS = {
    "type", "algorithm", "epoch", "num_available", "num_selected",
    "iterations", "rho", "mu0", "eta_max", "latency_s", "epoch_cost",
    "budget_total", "budget_spent", "budget_remaining",
    "train_loss_selected", "train_loss_all", "test_loss", "test_accuracy",
    "num_dropped", "clients",
}

CLIENT_KEYS = {
    "id", "cost", "data_size", "tau_loc", "tau_cm_est", "x_frac", "mu",
    "eta_est", "delta_est", "selected", "eta_hat", "delta_hat", "latency_s",
    "completed_iters", "dropped",
}


class ValidationError(Exception):
    pass


def fail(where, msg):
    raise ValidationError(f"{where}: {msg}")


def check_number(where, name, v, allow_null=False):
    if v is None:
        if allow_null:
            return
        fail(where, f"{name} is null")
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(where, f"{name} is not a number: {v!r}")
    if isinstance(v, float) and (math.isnan(v) or math.isinf(v)):
        fail(where, f"{name} is not finite: {v!r}")


def validate_trace(path):
    num_events = 0
    first_epoch = None
    last_epoch = None
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                fail(where, f"invalid JSON: {e}")
            if not isinstance(event, dict):
                fail(where, "event is not an object")
            if event.get("type") != "epoch":
                fail(where, f"unknown event type {event.get('type')!r}")
            missing = EPOCH_KEYS - event.keys()
            if missing:
                fail(where, f"missing keys: {sorted(missing)}")
            extra = event.keys() - EPOCH_KEYS
            if extra:
                fail(where, f"unexpected keys: {sorted(extra)}")
            for key in ("eta_max", "latency_s", "epoch_cost", "budget_total",
                        "budget_spent", "budget_remaining", "test_accuracy"):
                check_number(where, key, event[key])
            # Epochs must advance strictly within a run. A reset back to the
            # very first epoch value is a trial boundary (grid traces commit
            # several runs into one file); anything else is corruption.
            check_number(where, "epoch", event["epoch"])
            epoch = event["epoch"]
            if first_epoch is None:
                first_epoch = epoch
            elif not (epoch > last_epoch or epoch == first_epoch):
                fail(where, f"non-monotonic epoch: {epoch} after {last_epoch}")
            last_epoch = epoch
            for key in ("rho", "mu0"):
                check_number(where, key, event[key], allow_null=True)
            clients = event["clients"]
            if not isinstance(clients, list):
                fail(where, "clients is not an array")
            if len(clients) != event["num_available"]:
                fail(where, f"num_available={event['num_available']} but "
                            f"{len(clients)} client records")
            selected = 0
            for i, c in enumerate(clients):
                cwhere = f"{where} client[{i}]"
                if not isinstance(c, dict):
                    fail(cwhere, "not an object")
                if c.keys() != CLIENT_KEYS:
                    fail(cwhere, f"key set mismatch: missing "
                                 f"{sorted(CLIENT_KEYS - c.keys())}, extra "
                                 f"{sorted(c.keys() - CLIENT_KEYS)}")
                check_number(cwhere, "cost", c["cost"])
                check_number(cwhere, "tau_loc", c["tau_loc"])
                check_number(cwhere, "tau_cm_est", c["tau_cm_est"])
                if not isinstance(c["selected"], bool):
                    fail(cwhere, "selected is not a bool")
                if c["selected"]:
                    selected += 1
                    # realized outcomes must be present for selected clients
                    for key in ("eta_hat", "latency_s", "completed_iters"):
                        if c[key] is None:
                            fail(cwhere, f"selected client has null {key}")
                else:
                    for key in ("eta_hat", "delta_hat", "latency_s",
                                "completed_iters"):
                        if c[key] is not None:
                            fail(cwhere, f"unselected client has {key}="
                                         f"{c[key]!r}")
            if selected != event["num_selected"]:
                fail(where, f"num_selected={event['num_selected']} but "
                            f"{selected} clients flagged selected")
            spent_plus_rest = event["budget_spent"] + event["budget_remaining"]
            if abs(spent_plus_rest - event["budget_total"]) > 1e-6:
                fail(where, "budget ledger does not balance: "
                            f"{event['budget_spent']} + "
                            f"{event['budget_remaining']} != "
                            f"{event['budget_total']}")
            num_events += 1
    if num_events == 0:
        fail(path, "no epoch events")
    return f"{num_events} epoch events"


def validate_metrics(path):
    with open(path, encoding="utf-8") as f:
        snap = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if section not in snap or not isinstance(snap[section], dict):
            fail(path, f"missing or non-object section {section!r}")
    for name, v in snap["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"counter {name}: not a non-negative integer: {v!r}")
    for name, v in snap["gauges"].items():
        check_number(path, f"gauge {name}", v, allow_null=True)
    for name, h in snap["histograms"].items():
        where = f"{path} histogram {name}"
        bounds = h.get("bounds")
        counts = h.get("counts")
        if not isinstance(bounds, list) or not bounds:
            fail(where, "bounds missing or empty")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            fail(where, f"bounds not strictly ascending: {bounds}")
        if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
            fail(where, f"expected {len(bounds) + 1} counts, got {counts!r}")
        if any(not isinstance(c, int) or c < 0 for c in counts):
            fail(where, f"counts must be non-negative integers: {counts}")
        if sum(counts) != h.get("total"):
            fail(where, f"total={h.get('total')} != sum(counts)={sum(counts)}")
        check_number(where, "sum", h.get("sum"))
    n = sum(len(snap[s]) for s in ("counters", "gauges", "histograms"))
    if n == 0:
        fail(path, "snapshot is empty")
    return f"{n} metrics"


def validate_profile(path):
    with open(path, encoding="utf-8") as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "traceEvents missing or not an array")
    spans = 0
    for i, ev in enumerate(events):
        where = f"{path} traceEvents[{i}]"
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(where, f"unexpected phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(where, "missing name")
        if ph == "X":
            spans += 1
            for key in ("ts", "dur"):
                check_number(where, key, ev.get(key))
                if ev[key] < 0:
                    fail(where, f"negative {key}: {ev[key]}")
            for key in ("pid", "tid"):
                if not isinstance(ev.get(key), int):
                    fail(where, f"missing integer {key}")
    if spans == 0:
        fail(path, "no complete ('X') span events")
    return f"{spans} spans"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="per-epoch JSONL decision trace")
    parser.add_argument("--metrics", help="metrics snapshot JSON")
    parser.add_argument("--profile", help="Chrome-trace profile JSON")
    args = parser.parse_args()
    if not (args.trace or args.metrics or args.profile):
        parser.error("nothing to validate; pass --trace/--metrics/--profile")
    try:
        if args.trace:
            print(f"OK {args.trace}: {validate_trace(args.trace)}")
        if args.metrics:
            print(f"OK {args.metrics}: {validate_metrics(args.metrics)}")
        if args.profile:
            print(f"OK {args.profile}: {validate_profile(args.profile)}")
    except ValidationError as e:
        print(f"FAIL {e}", file=sys.stderr)
        return 1
    except OSError as e:
        print(f"FAIL {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
