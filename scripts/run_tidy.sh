#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the project's
# compile_commands.json without rebuilding anything.
#
# Usage:
#   scripts/run_tidy.sh [options] [file.cpp ...]
#
# Options:
#   --build-dir DIR   build tree holding compile_commands.json (default:
#                     build; configure once with any cmake preset — the
#                     top-level CMakeLists exports compile commands
#                     unconditionally)
#   --changed [REF]   only lint .cpp files changed vs REF (default: the
#                     merge-base with origin/main, falling back to HEAD~1),
#                     plus uncommitted changes — the CI changed-files mode
#   --fix             let clang-tidy apply its fix-its
#
# Exit codes: 0 clean, 1 findings, 2 environment problems (no clang-tidy,
# no compile database). CI treats 2 as a hard failure; local callers get a
# clear message either way.
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build"
changed_mode=0
changed_ref=""
fix_flag=()
files=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="$2"; shift 2 ;;
    --changed)
      changed_mode=1
      if [[ $# -gt 1 && "$2" != --* && "$2" != *.cpp ]]; then
        changed_ref="$2"; shift
      fi
      shift ;;
    --fix) fix_flag=(--fix); shift ;;
    -h|--help) sed -n '2,22p' "$0"; exit 0 ;;
    *) files+=("$1"); shift ;;
  esac
done

tidy="${CLANG_TIDY:-}"
if [[ -z "$tidy" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi
if [[ -z "$tidy" ]]; then
  echo "run_tidy.sh: no clang-tidy on PATH (set CLANG_TIDY=... to point at" \
       "one). Install clang-tidy to run Layer 2 of the static contract." >&2
  exit 2
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy.sh: $build_dir/compile_commands.json not found." \
       "Configure first: cmake -B \"$build_dir\" -S \"$repo_root\"" >&2
  exit 2
fi

if [[ $changed_mode -eq 1 && ${#files[@]} -eq 0 ]]; then
  if [[ -z "$changed_ref" ]]; then
    changed_ref="$(git -C "$repo_root" merge-base origin/main HEAD \
                   2>/dev/null || true)"
    [[ -z "$changed_ref" ]] && changed_ref="HEAD~1"
  fi
  mapfile -t files < <(
    { git -C "$repo_root" diff --name-only --diff-filter=d "$changed_ref" \
        -- 'src/*.cpp'
      git -C "$repo_root" diff --name-only --diff-filter=d \
        -- 'src/*.cpp'; } | sort -u)
  if [[ ${#files[@]} -eq 0 ]]; then
    echo "run_tidy.sh: no changed src/*.cpp vs $changed_ref — nothing to do."
    exit 0
  fi
elif [[ ${#files[@]} -eq 0 ]]; then
  mapfile -t files < <(cd "$repo_root" && ls src/*/*.cpp)
fi

echo "run_tidy.sh: $tidy over ${#files[@]} file(s), config .clang-tidy"
status=0
for f in "${files[@]}"; do
  abs="$f"
  [[ "$abs" != /* ]] && abs="$repo_root/$f"
  "$tidy" -p "$build_dir" --quiet "${fix_flag[@]}" "$abs" || status=1
done
if [[ $status -ne 0 ]]; then
  echo "run_tidy.sh: findings above — the committed tree must stay at zero." >&2
fi
exit $status
